#!/usr/bin/env bash
# bench.sh — run the kernel/PHY hot-path benchmark suite and record the
# results in BENCH_kernel.json, the fault-injection overhead suite in
# BENCH_fault.json, the per-protocol whole-run suite in BENCH_run.json,
# and the sharded-engine scaling suite in BENCH_shard.json, so every PR
# leaves a perf trajectory.
#
# Usage:
#   scripts/bench.sh            # run suites, rewrite BENCH_*.json
#   scripts/bench.sh -quick     # single iteration smoke (CI)
#   scripts/bench.sh -check     # short run, gate against committed JSONs
#
# Each JSON maps a benchmark to {ns_op, b_op, allocs_op}. Commit the
# refreshed files together with any change that moves these numbers, and
# quote the before/after in the PR description.
#
# -check compares a short (1s benchtime) run against the committed numbers
# and fails on any allocs/op increase or on an ns/op regression beyond the
# noise tolerance: 75% for the kernel microbenchmarks, 50% for the
# whole-run suite. The committed numbers are best-of-N quiet-window
# samples, and same-binary noise on shared runners reaches +50% on the
# sub-2µs microbenchmarks, so the ns/op edge of this gate only catches
# structural (multi-x) slowdowns — the sharp edge is allocs/op: exact for
# the kernel suite (committed at zero), 5% for the whole-run suite whose
# per-run totals wobble ±1% with data-dependent retries. It never
# rewrites the JSONs.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="2s"
QUICK=0
CHECK=0
case "${1:-}" in
-quick)
    # Smoke mode: single iteration, and keep the committed numbers — a 1x
    # sample is a liveness check, not a measurement.
    BENCHTIME="1x"
    QUICK=1
    ;;
-check)
    BENCHTIME="1s"
    CHECK=1
    ;;
esac

# bench_suite PATTERN OUT PKGS... — run one benchmark suite and render the
# results as JSON into OUT (/dev/null in smoke mode, a temp file in check
# mode).
bench_suite() {
    local pattern=$1 out=$2
    shift 2
    [[ "$QUICK" == 1 ]] && out=/dev/null
    [[ "$CHECK" == 1 ]] && out="${TMPDIR:-/tmp}/bench_check_$(basename "$out")"
    local raw
    raw=$(go test -run '^$' -bench "$pattern" -benchtime "$BENCHTIME" -benchmem "$@")
    echo "$raw"

    echo "$raw" | awk '
    BEGIN { print "{"; n = 0 }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
        ns = ""; bop = ""; allocs = ""; evs = ""
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op")     ns     = $(i - 1)
            if ($(i) == "B/op")      bop    = $(i - 1)
            if ($(i) == "allocs/op") allocs = $(i - 1)
            if ($(i) == "events/s")  evs    = $(i - 1)
        }
        if (ns == "") next
        if (n++) printf ",\n"
        printf "  \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s", \
            name, ns, (bop == "" ? "null" : bop), (allocs == "" ? "null" : allocs)
        if (evs != "") printf ", \"events_s\": %s", evs
        printf "}"
    }
    END { print "\n}" }
    ' > "$out"

    if [[ "$CHECK" == 0 && "$out" != /dev/null ]]; then
        echo
        echo "wrote $out:"
        cat "$out"
    fi
}

# bench_rows FILE — flatten a BENCH_*.json into "name ns_op allocs_op"
# rows for the comparison below.
bench_rows() {
    sed -n 's/^  "\([^"]*\)": {"ns_op": \([0-9.e+]*\), "b_op": [^,]*, "allocs_op": \([0-9.e+null]*\).*/\1 \2 \3/p' "$1"
}

# check_suite REF TOL ATOL — compare the current run (the temp file
# bench_suite left for REF) against the committed REF. Fails the script on
# an allocs/op increase beyond ATOL (0 = exact) or an ns/op regression
# beyond TOL.
CHECK_FAILED=0
check_suite() {
    local ref=$1 tol=$2 atol=${3:-0}
    local cur="${TMPDIR:-/tmp}/bench_check_${ref}"
    local refrows currows
    refrows=$(mktemp) currows=$(mktemp)
    bench_rows "$ref" > "$refrows"
    bench_rows "$cur" > "$currows"
    if ! awk -v tol="$tol" -v atol="$atol" -v ref="$ref" '
    NR == FNR { ns[$1] = $2; al[$1] = $3; next }
    $1 in ns {
        bad_ns = ($2 > ns[$1] * (1 + tol))
        bad_al = (al[$1] != "null" && $3 != "null" && $3 + 0 > al[$1] * (1 + atol))
        if (bad_ns)
            printf "REGRESSION %s: %.0f ns/op vs committed %.0f (+%.0f%%, tolerance %.0f%%)\n",
                $1, $2, ns[$1], 100 * ($2 / ns[$1] - 1), 100 * tol > "/dev/stderr"
        if (bad_al)
            printf "REGRESSION %s: %d allocs/op vs committed %d\n",
                $1, $3, al[$1] > "/dev/stderr"
        if (bad_ns || bad_al) bad = 1
        else ok++
        seen++
    }
    END {
        printf "%s: %d/%d benchmarks within tolerance\n", ref, ok, seen
        if (seen == 0) { print ref ": no overlapping benchmarks — stale reference?" > "/dev/stderr"; bad = 1 }
        exit bad
    }
    ' "$refrows" "$currows"; then
        CHECK_FAILED=1
    fi
    rm -f "$refrows" "$currows"
}

bench_suite 'BenchmarkEngineSchedule|BenchmarkEngineScheduleCancel|BenchmarkEngineTimerChurn|BenchmarkMediumFanout|BenchmarkToneStorm' \
    BENCH_kernel.json ./internal/sim ./internal/phy
[[ "$CHECK" == 1 ]] && check_suite BENCH_kernel.json 0.75

if [[ "$CHECK" == 0 ]]; then
    # Impairment overhead: the same 200-radio fanout with the fault layer
    # attached (bursty channel) vs attached-but-disabled. The disabled case
    # is the regression gate — a zero fault.Config must stay free.
    bench_suite 'BenchmarkFaultFanout' BENCH_fault.json ./internal/fault
fi

# Whole-run throughput per MAC protocol: the end-to-end engineering metric
# of the pooled frame lifecycle. allocs_op is the bill for a complete run
# (network construction included); events_s is the headline number. The
# pattern is anchored so the sharded suite below stays out of this file.
bench_suite '^BenchmarkWholeRun$' BENCH_run.json .
[[ "$CHECK" == 1 ]] && check_suite BENCH_run.json 0.50 0.05

# Sharded-engine scaling: the 1k/10k-node metro workload across shard
# counts (DESIGN.md §14). Each iteration is a whole multi-second run, so a
# single iteration is already an average over millions of events —
# benchtime stays 1x. The speedup ns_op(shards1)/ns_op(shardsN) is bounded
# by the recording host's core count (the -N suffix in the raw output);
# record the JSON from a machine with ≥ 8 cores to see the scaling, and
# quote that core count next to any speedup claim. The Mobile variant
# re-runs the 1k row with every node on a Speed1 waypoint trajectory, so
# BENCH_shard.json also records the mobility-epoch overhead at equal
# shard counts. Quick mode runs only the 1k rows as a liveness check;
# check mode skips the suite — wall-clock
# scaling ratios on shared runners are noise, and the allocation gates
# live in the test suite (TestShardedSteadyStateAllocs).
if [[ "$CHECK" == 0 ]]; then
    SHARD_PATTERN='^BenchmarkWholeRunSharded(Mobile)?$'
    [[ "$QUICK" == 1 ]] && SHARD_PATTERN='^BenchmarkWholeRunSharded(Mobile)?$/^n1000$'
    BENCHTIME=1x # whole runs: one iteration is the measurement
    bench_suite "$SHARD_PATTERN" BENCH_shard.json .
fi

if [[ "$CHECK" == 1 ]]; then
    if [[ "$CHECK_FAILED" == 1 ]]; then
        echo "bench check FAILED" 1>&2
        exit 1
    fi
    echo "bench check passed"
fi
