#!/usr/bin/env bash
# Real-binary smoke test for rmacserved: start the service with a journal,
# submit a small sweep, kill -9 the server mid-sweep, restart it over the
# same journal, and assert that
#
#   1. the restarted server resumes and completes the job (unfinished
#      points are retried; finished ones are not re-run), and
#   2. the served delivery ratio is identical to what the batch CLI
#      (rmacsim) computes for the same grid point.
#
# The in-process chaos tests (internal/server) cover the same machinery
# with scripted failures; this exercises the actual binaries, signals and
# HTTP surface end to end. Needs only curl + standard POSIX tools.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
JOURNAL="$BIN/sweeps.jsonl"
ADDR=127.0.0.1:18473
SRV=

cleanup() {
    [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

echo "== building"
go build -o "$BIN/rmacserved" ./cmd/rmacserved
go build -o "$BIN/rmacsim" ./cmd/rmacsim

start_server() {
    "$BIN/rmacserved" -addr "$ADDR" -journal "$JOURNAL" -workers 2 &
    SRV=$!
    for _ in $(seq 100); do
        if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then return; fi
        sleep 0.1
    done
    echo "FAIL: server did not come up" >&2
    exit 1
}

# 3 rmac points (seeds 0..2 -> placement seeds 1, 7920, 15839), small
# enough to finish quickly, big enough that kill -9 lands mid-sweep.
REQ='{"protocols":["rmac"],"rates":[10],"seeds":3,"nodes":20,"field_w":250,"field_h":150,"packets":40}'

echo "== first life: submit, then kill -9 mid-sweep"
start_server
JOB=$(curl -fsS -d "$REQ" "http://$ADDR/sweeps" | sed -n 's/.*"job": "\(j[0-9]*\)".*/\1/p')
[ -n "$JOB" ] || { echo "FAIL: no job id in submit response" >&2; exit 1; }
sleep 0.5
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true
SRV=

echo "== second life: resume from journal"
start_server
STATE=
for _ in $(seq 600); do
    STATE=$(curl -fsS "http://$ADDR/jobs/$JOB" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -1)
    [ "$STATE" = completed ] && break
    sleep 0.2
done
if [ "$STATE" != completed ]; then
    echo "FAIL: job $JOB state after resume: ${STATE:-unknown}" >&2
    curl -fsS "http://$ADDR/jobs/$JOB" >&2 || true
    exit 1
fi

# First results entry is grid point 0 (rmac, rate 10, placement seed 1).
SERVED=$(curl -fsS "http://$ADDR/jobs/$JOB" | grep -m1 '"delivery"' | sed 's/.*: \([0-9.eE+-]*\),*/\1/')
SERVED=$(printf '%.4f' "$SERVED")

echo "== batch CLI on the same grid point"
BATCH=$("$BIN/rmacsim" -protocol rmac -scenario stationary -rate 10 -packets 40 \
    -nodes 20 -field-w 250 -field-h 150 -seed 1 \
    | sed -n 's/.*packet delivery ratio *\([0-9.]*\).*/\1/p')

if [ "$SERVED" != "$BATCH" ]; then
    echo "FAIL: served delivery $SERVED != batch delivery $BATCH" >&2
    exit 1
fi
echo "OK: resumed job completed; served delivery $SERVED == batch $BATCH"
