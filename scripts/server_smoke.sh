#!/usr/bin/env bash
# Real-binary smoke test for rmacserved: start the service with a journal,
# submit a small sweep, kill -9 the server mid-sweep, restart it over the
# same journal, and assert that
#
#   1. the restarted server resumes and completes the job (unfinished
#      points are retried; finished ones are not re-run),
#   2. the served delivery ratio is identical to what the batch CLI
#      (rmacsim) computes for the same grid point, and
#   3. the telemetry surface holds up: /metrics serves well-formed,
#      convention-named series, the counters replayed from the journal
#      are monotone across the kill -9 (post-resume totals >= any value
#      the first life served), and /debug/pprof answers.
#
# The in-process chaos tests (internal/server) cover the same machinery
# with scripted failures; this exercises the actual binaries, signals and
# HTTP surface end to end. Needs only curl + standard POSIX tools.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
JOURNAL="$BIN/sweeps.jsonl"
ADDR=127.0.0.1:18473
SRV=

cleanup() {
    [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

echo "== building"
go build -o "$BIN/rmacserved" ./cmd/rmacserved
go build -o "$BIN/rmacsim" ./cmd/rmacsim

start_server() {
    "$BIN/rmacserved" -addr "$ADDR" -journal "$JOURNAL" -workers 2 &
    SRV=$!
    for _ in $(seq 100); do
        if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then return; fi
        sleep 0.1
    done
    echo "FAIL: server did not come up" >&2
    exit 1
}

# 3 rmac points (seeds 0..2 -> placement seeds 1, 7920, 15839), small
# enough to finish quickly, big enough that kill -9 lands mid-sweep.
REQ='{"protocols":["rmac"],"rates":[10],"seeds":3,"nodes":20,"field_w":250,"field_h":150,"packets":40}'

# metric prints one sample's value from /metrics (exact series name,
# labels included).
metric() {
    curl -fsS "http://$ADDR/metrics" | awk -v s="$1" '$1 == s {print $2}'
}

echo "== first life: submit, then kill -9 mid-sweep"
start_server
JOB=$(curl -fsS -d "$REQ" "http://$ADDR/sweeps" | sed -n 's/.*"job": "\(j[0-9]*\)".*/\1/p')
[ -n "$JOB" ] || { echo "FAIL: no job id in submit response" >&2; exit 1; }
sleep 0.5
EV_BEFORE=$(metric rmac_kernel_events_total)
[ -n "$EV_BEFORE" ] || { echo "FAIL: rmac_kernel_events_total missing pre-kill" >&2; exit 1; }
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true
SRV=

echo "== second life: resume from journal"
start_server
STATE=
for _ in $(seq 600); do
    STATE=$(curl -fsS "http://$ADDR/jobs/$JOB" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -1)
    [ "$STATE" = completed ] && break
    sleep 0.2
done
if [ "$STATE" != completed ]; then
    echo "FAIL: job $JOB state after resume: ${STATE:-unknown}" >&2
    curl -fsS "http://$ADDR/jobs/$JOB" >&2 || true
    exit 1
fi

# First results entry is grid point 0 (rmac, rate 10, placement seed 1).
SERVED=$(curl -fsS "http://$ADDR/jobs/$JOB" | grep -m1 '"delivery"' | sed 's/.*: \([0-9.eE+-]*\),*/\1/')
SERVED=$(printf '%.4f' "$SERVED")

echo "== batch CLI on the same grid point"
BATCH=$("$BIN/rmacsim" -protocol rmac -scenario stationary -rate 10 -packets 40 \
    -nodes 20 -field-w 250 -field-h 150 -seed 1 \
    | sed -n 's/.*packet delivery ratio *\([0-9.]*\).*/\1/p')

if [ "$SERVED" != "$BATCH" ]; then
    echo "FAIL: served delivery $SERVED != batch delivery $BATCH" >&2
    exit 1
fi
echo "OK: resumed job completed; served delivery $SERVED == batch $BATCH"

echo "== telemetry: core series, monotone resume, name lint, pprof"
EV_AFTER=$(metric rmac_kernel_events_total)
DONE=$(metric 'rmac_service_points_total{outcome="done"}')
WORKERS=$(metric rmac_service_workers)
[ -n "$EV_AFTER" ] && [ -n "$DONE" ] && [ -n "$WORKERS" ] || {
    echo "FAIL: core series missing from /metrics (events='$EV_AFTER' done='$DONE' workers='$WORKERS')" >&2
    exit 1
}
# Counters replayed from the journal must be >= anything the first life
# served, and a completed 3-point sweep is strictly positive.
awk -v a="$EV_AFTER" -v b="$EV_BEFORE" -v d="$DONE" \
    'BEGIN { exit !(a+0 >= b+0 && a+0 > 0 && d+0 >= 3) }' || {
    echo "FAIL: counters not monotone across kill -9 (events $EV_BEFORE -> $EV_AFTER, done $DONE)" >&2
    exit 1
}
# promtool-free lint: every family is rmac_<subsystem>_<name>_<unit>.
curl -fsS "http://$ADDR/metrics" | awk '
    /^# TYPE / {
        name = $3; typ = $4
        if (name !~ /^rmac_(kernel|proto|service)_[a-z0-9_]+$/) { print "bad family name: " name; bad = 1 }
        if (typ == "counter" && name !~ /_total$/) { print "counter without _total: " name; bad = 1 }
        if (typ == "histogram" && name !~ /_(seconds|bytes)$/) { print "histogram without base unit: " name; bad = 1 }
    }
    END { exit bad }
' || { echo "FAIL: metrics name lint" >&2; exit 1; }
# The pprof surface answers with a real (non-empty) CPU profile.
PPROF_BYTES=$(curl -fsS "http://$ADDR/debug/pprof/profile?seconds=1" | wc -c)
[ "$PPROF_BYTES" -gt 0 ] || { echo "FAIL: empty pprof profile" >&2; exit 1; }
echo "OK: telemetry — events $EV_BEFORE -> $EV_AFTER, $DONE points done, pprof $PPROF_BYTES bytes"
