module rmac

go 1.22
